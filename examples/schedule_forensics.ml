(* Schedule forensics: attach a recorder to the engine, replay a faulty
   workload, and dissect what happened — which jobs died, on which
   nodes, and how well different predictors would have seen it coming.

     dune exec examples/schedule_forensics.exe *)

let () =
  let log =
    Bgl_workload.Synthetic.generate
      { profile = Bgl_workload.Profile.sdsc; n_jobs = 600; max_nodes = 128; seed = 5 }
  in
  let span = Bgl_trace.Job_log.span log in
  let failures =
    Bgl_failure.Generator.generate
      (Bgl_failure.Generator.default ~span:(span *. 1.5) ~volume:128 ~n_events:180 ~seed:6)
  in
  let index = Bgl_predict.Failure_index.of_log failures in
  let recorder = Bgl_sim.Recorder.create () in
  let policy =
    Bgl_sched.Placement.balancing
      ~predictor:(Bgl_predict.Predictor.balancing ~confidence:0.3 index)
      ()
  in
  let outcome = Bgl_sim.Engine.run ~recorder ~policy ~log ~failures () in
  (* The replay accessors below (entries/kills_of/busiest_victim) only
     work on a buffered recorder; streaming ones raise. *)
  assert (Bgl_sim.Recorder.is_buffered recorder);
  Format.printf "%a@.@." Bgl_sim.Metrics.pp_report outcome.report;

  (* 1. The raw execution trace (first few entries). *)
  Format.printf "== first 12 trace entries ==@.";
  List.iteri
    (fun i entry -> if i < 12 then Format.printf "%a@." Bgl_sim.Recorder.pp_entry entry)
    (Bgl_sim.Recorder.entries recorder);

  (* 2. Kill forensics: who suffered, and on which nodes? *)
  Format.printf "@.== kill forensics ==@.";
  (match Bgl_sim.Recorder.busiest_victim recorder with
  | None -> Format.printf "no job was ever killed@."
  | Some (job, kills) ->
      Format.printf "most-killed job: %d (%d kills)@." job kills;
      List.iter
        (fun (time, node) -> Format.printf "  killed at %.0f by node %d@." time node)
        (Bgl_sim.Recorder.kills_of recorder ~job));
  let node_kills = Hashtbl.create 16 in
  List.iter
    (function
      | Bgl_sim.Recorder.Node_failed { node; victim = Some _; _ } ->
          Hashtbl.replace node_kills node
            (1 + Option.value ~default:0 (Hashtbl.find_opt node_kills node))
      | _ -> ())
    (Bgl_sim.Recorder.entries recorder);
  let ranked =
    Hashtbl.fold (fun node kills acc -> (node, kills) :: acc) node_kills []
    |> List.sort (fun (_, a) (_, b) -> Int.compare b a)
  in
  Format.printf "deadliest nodes:@.";
  List.iteri (fun i (node, k) -> if i < 5 then Format.printf "  node %3d: %d job kills@." node k) ranked;

  (* 3. The machine's utilisation timeline, reconstructed from the
     trace. *)
  let segments = Bgl_core.Timeline.segments recorder in
  Format.printf "@.== utilisation timeline (%d tenancies) ==@.|%s|@."
    (List.length segments)
    (Bgl_core.Timeline.render segments ~volume:128 ~width:72);

  (* 4. Predictor post-mortem: how good would each predictor have been
     on this trace? *)
  Format.printf "@.== predictor quality on this trace (2 h horizon) ==@.";
  let score name predictor =
    let report =
      Bgl_predict.Evaluation.probe predictor ~truth:index ~span ~horizon:7200. ~nodes:128
        ~samples:400
    in
    Format.printf "%-28s %a@." name Bgl_predict.Evaluation.pp report
  in
  score "oracle" (Bgl_predict.Predictor.oracle index);
  score "tie-breaking a=0.7" (Bgl_predict.Predictor.tie_breaking ~accuracy:0.7 ~seed:9 index);
  score "noisy a=0.7 fp=0.05"
    (Bgl_predict.Predictor.noisy ~accuracy:0.7 ~false_positive:0.05 ~seed:9 index);
  score "ewma half-life 2 d"
    (Bgl_predict.History.ewma ~half_life:172_800. ~threshold:0.05 index);
  score "rate window 1 w" (Bgl_predict.History.rate ~window:604_800. ~threshold:0.05 index)
