(* Quickstart: simulate a BlueGene/L-style machine under failures and
   compare a fault-oblivious scheduler with the paper's balancing
   algorithm.

     dune exec examples/quickstart.exe *)

let () =
  (* 1. A workload: 800 jobs drawn from the SDSC-like profile, sized
     for the 4x4x8 supernode torus. *)
  let log =
    Bgl_workload.Synthetic.generate
      { profile = Bgl_workload.Profile.sdsc; n_jobs = 800; max_nodes = 128; seed = 42 }
  in
  Format.printf "workload: %a@.@." Bgl_trace.Job_log.pp_stats log;

  (* 2. A failure trace: bursty, node-skewed events across the span. *)
  let failures =
    Bgl_failure.Generator.generate
      (Bgl_failure.Generator.default
         ~span:(Bgl_trace.Job_log.span log *. 1.5)
         ~volume:128 ~n_events:120 ~seed:7)
  in
  Format.printf "failures: %a@.@." Bgl_trace.Failure_log.pp_stats failures;

  (* 3. Predictors consult the failure log (Section 4 of the paper);
     confidence 0.5 means upcoming failures are flagged with
     probability 0.5. *)
  let index = Bgl_predict.Failure_index.of_log failures in

  let simulate name policy =
    let outcome = Bgl_sim.Engine.run ~policy ~log ~failures () in
    Format.printf "--- %s ---@.%a@.@." name Bgl_sim.Metrics.pp_report outcome.report;
    outcome.report
  in
  let oblivious = simulate "fault-oblivious (Krevat MFP)" Bgl_sched.Placement.mfp in
  let aware =
    simulate "balancing, confidence 0.5"
      (Bgl_sched.Placement.balancing
         ~predictor:(Bgl_predict.Predictor.balancing ~confidence:0.5 index)
         ())
  in
  Format.printf "bounded slowdown: %.1f -> %.1f (%.0f%% change)@." oblivious.avg_bounded_slowdown
    aware.avg_bounded_slowdown
    (100.
    *. (aware.avg_bounded_slowdown -. oblivious.avg_bounded_slowdown)
    /. oblivious.avg_bounded_slowdown)
