(* Capacity planning: a site expects its load to grow and its machine
   to age (more frequent failures). How much of the degradation can a
   fault-aware scheduler absorb, and when is extra capacity needed
   regardless?

   Sweeps load c and failure intensity for fault-oblivious vs balancing
   scheduling, the kind of question the paper's Figures 4-8 answer.

     dune exec examples/capacity_planning.exe *)

open Bgl_core

let () =
  let loads = [ 0.9; 1.0; 1.1; 1.2 ] in
  let failure_levels = [ (1000, "aging: low"); (4000, "aging: high") ] in
  let n_jobs = 800 in
  Format.printf
    "%-14s %-12s %-18s %10s %10s %8s@." "load c" "failures" "scheduler" "slowdown" "wait(h)"
    "util";
  List.iter
    (fun load ->
      List.iter
        (fun (failures, flabel) ->
          List.iter
            (fun (alabel, algo) ->
              let scenario =
                Scenario.make ~n_jobs ~load ~failures_paper:failures
                  ~profile:Bgl_workload.Profile.sdsc algo
              in
              let report = (Scenario.run scenario).report in
              Format.printf "%-14g %-12s %-18s %10.1f %10.2f %8.3f@." load flabel alabel
                report.avg_bounded_slowdown
                (report.avg_wait /. 3600.)
                report.util)
            [
              ("fault-oblivious", Scenario.Fault_oblivious);
              ("balancing a=0.5", Scenario.Balancing { confidence = 0.5 });
            ])
        failure_levels)
    loads;
  Format.printf
    "@.Reading: if slowdown under 'balancing' still exceeds the site's target at the planned \
     load, prediction alone cannot absorb the growth - provision capacity.@."
